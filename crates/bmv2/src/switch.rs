//! The switch: parser FSM, ingress execution, deparser, and state.
//!
//! Three execution engines share one runtime state (selected with
//! [`Switch::set_engine`]):
//!
//! * the **threaded** fast path (default): the flat op stream lowered
//!   once more into direct-threaded closure arrays by
//!   [`mod@crate::threaded`] — no per-op `match`, pre-resolved slots,
//!   masks, and register/table handles (DESIGN.md §14);
//! * the **compiled** pc-loop: flat op arrays produced by
//!   [`mod@crate::compile`], slot-addressed packet fields, zero per-packet
//!   heap allocation for already-interned fields;
//! * the **tree-walking interpreter**: re-evaluates the AST per packet
//!   through the string compatibility layer. It is intentionally kept
//!   simple and serves as the differential oracle for the other two.
//!
//! All three count, mutate, and fail identically — the differential
//! proptests and the chaos matrix hold them to byte-for-byte equal
//! outputs, errors, [`SwitchCounters`], and register state.

use std::sync::Arc;

use crate::batch::PacketBatch;
use crate::compile::{
    self, CExtract, COp, CTransition, CompiledProgram, Dest, EOp, ExternFn, Span, StateRef,
};
use crate::eval::{bin_value, canonical, eval, instance_of, mask_of};
use crate::packet::{read_field, write_field, FieldError, Packet, PacketError};
use crate::threaded::{self, ThreadedProgram};
use netcl_ir::interp::eval_intrinsic;
use netcl_p4::ast::*;

/// Which execution engine a [`Switch`] runs (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Engine {
    /// Tree-walking AST interpreter (the differential oracle).
    Interpreted,
    /// Flat-op pc-loop produced by [`mod@crate::compile`].
    Compiled,
    /// Direct-threaded closure arrays (the default; DESIGN.md §14).
    #[default]
    Threaded,
}

impl Engine {
    /// Stable lowercase label, used on [`SwitchCounters`] and trace spans.
    pub fn name(self) -> &'static str {
        match self {
            Engine::Interpreted => "interpreted",
            Engine::Compiled => "compiled",
            Engine::Threaded => "threaded",
        }
    }
}

/// Runtime errors (all indicate malformed programs or packets).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SwitchError {
    /// Packet parse failure.
    Packet(PacketError),
    /// Program references an unknown entity.
    Unknown(String),
}

impl std::fmt::Display for SwitchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SwitchError::Packet(p) => write!(f, "{p}"),
            SwitchError::Unknown(s) => write!(f, "unknown entity `{s}`"),
        }
    }
}

impl From<PacketError> for SwitchError {
    fn from(p: PacketError) -> Self {
        SwitchError::Packet(p)
    }
}

fn field_err(e: FieldError, header: &str) -> SwitchError {
    match e {
        FieldError::Unaligned { .. } => PacketError::Unaligned(header.to_string()).into(),
        FieldError::Truncated => PacketError::Truncated { header: header.to_string() }.into(),
    }
}

/// Per-switch data-plane counters (DESIGN.md §12). Always on — each is a
/// single integer increment on an already-taken branch, which the
/// throughput benchmark bounds at < 2% — and they count identically on the
/// compiled and interpreted engines, so the differential tests compare
/// them too. Reset by [`Switch::reset_counters`] and by device restarts
/// (a fresh switch starts from zero, like real hardware).
#[derive(Debug, Default, Clone)]
pub struct SwitchCounters {
    /// Which engine accumulated these counts ([`Engine::name`]): shows up
    /// in telemetry and Perfetto traces so interpreted/compiled/threaded
    /// runs are distinguishable. Deliberately **excluded from equality**:
    /// the differential tests compare counters across engines, and the
    /// label is the one field that legitimately differs.
    pub backend: &'static str,
    /// Packets entering the pipeline (parse attempts).
    pub packets: u64,
    /// Packets rejected with an error (parse failure or a deferred
    /// compile-time failure surfacing at execution).
    pub errors: u64,
    /// Table hits, by table-state index (see [`Switch::table_stats`]).
    pub table_hits: Vec<u64>,
    /// Table misses, by table-state index.
    pub table_misses: Vec<u64>,
    /// `RegisterAction` executions (SALU microprograms).
    pub reg_action_execs: u64,
    /// Action invocations (table-driven and direct calls).
    pub action_calls: u64,
    /// Extern function calls (hash engines count separately under their
    /// tables' keys; this counts `random` and the ncl intrinsics).
    pub extern_calls: u64,
    /// Control-plane table operations applied through
    /// [`Switch::apply_update`] (one per op in an accepted batch).
    pub table_updates: u64,
    /// Control-plane update *batches* rejected by validation (nothing
    /// applied — see [`crate::ctrl`]).
    pub update_rejects: u64,
    /// Per-tenant sub-views (DESIGN.md §17), keyed by tenant id. Empty
    /// until [`Switch::set_tenants`] configures the comp→tenant map;
    /// maintained identically by all three engines and both batch paths,
    /// so they participate in the differential contract like every other
    /// counter.
    pub tenants: std::collections::BTreeMap<u16, TenantCounters>,
}

/// One tenant's slice of the data-plane counters. Packets attribute by
/// the NCL shim's `comp` byte (wire byte 8 — the tenant classifier at
/// ingress); `RegisterAction` executions attribute by delta around each
/// packet's execution, which is exact because namespaced kernels dispatch
/// exclusively on `comp`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantCounters {
    /// Packets entering the pipeline with this tenant's comp byte.
    pub packets: u64,
    /// SALU microprograms executed on behalf of this tenant's packets.
    pub reg_action_execs: u64,
}

/// Equality ignores the `backend` label (see its doc).
impl PartialEq for SwitchCounters {
    fn eq(&self, other: &Self) -> bool {
        self.packets == other.packets
            && self.errors == other.errors
            && self.table_hits == other.table_hits
            && self.table_misses == other.table_misses
            && self.reg_action_execs == other.reg_action_execs
            && self.action_calls == other.action_calls
            && self.extern_calls == other.extern_calls
            && self.table_updates == other.table_updates
            && self.update_rejects == other.update_rejects
            && self.tenants == other.tenants
    }
}

impl Eq for SwitchCounters {}

impl SwitchCounters {
    fn new(cp: &CompiledProgram, backend: &'static str) -> SwitchCounters {
        SwitchCounters {
            backend,
            table_hits: vec![0; cp.table_states.len()],
            table_misses: vec![0; cp.table_states.len()],
            ..SwitchCounters::default()
        }
    }

    /// Total hits across all tables.
    pub fn total_hits(&self) -> u64 {
        self.table_hits.iter().sum()
    }

    /// Total misses across all tables.
    pub fn total_misses(&self) -> u64 {
        self.table_misses.iter().sum()
    }
}

/// Mutable per-switch state shared by both engines, plus the compiled
/// path's reusable scratch buffers (all stack-disciplined so re-entrant
/// table/action execution never allocates in steady state).
pub(crate) struct RuntimeState {
    /// Register cells, by [`CompiledProgram`] register index.
    pub(crate) registers: Vec<Vec<u64>>,
    /// Table entries, by table-state index (shared by name).
    pub(crate) tables: Vec<Vec<TableEntry>>,
    pub(crate) rng: u64,
    /// Postfix evaluation stack (compiled engine only; the threaded engine
    /// evaluates through closure trees and never touches it).
    pub(crate) stack: Vec<(u64, u32)>,
    /// Table key values for in-flight applies.
    pub(crate) keys: Vec<u64>,
    /// Action args / RA operands / extern arg values.
    pub(crate) scratch: Vec<u64>,
    /// Saved `(slot, value, present)` for action-parameter bindings.
    pub(crate) param_saves: Vec<(compile::FieldSlot, u64, bool)>,
    /// Data-plane counters (lives here so the compiled path's free
    /// functions can increment through `st`).
    pub(crate) counters: SwitchCounters,
}

impl RuntimeState {
    fn new(cp: &CompiledProgram, backend: &'static str) -> RuntimeState {
        RuntimeState {
            registers: cp.regs.iter().map(|r| vec![0u64; r.size]).collect(),
            tables: cp.table_states.iter().map(|t| t.entries.clone()).collect(),
            rng: 0x9E37_79B9_97F4_A7C1,
            stack: Vec::new(),
            keys: Vec::new(),
            scratch: Vec::new(),
            param_saves: Vec::new(),
            counters: SwitchCounters::new(cp, backend),
        }
    }
}

/// The comp→tenant classification a multi-tenant switch attributes
/// counters with ([`Switch::set_tenants`]). A 256-entry direct map: the
/// NCL `comp` byte indexes it, `u16::MAX` means "no tenant".
struct Tenancy {
    comp_tenant: [u16; 256],
}

impl Tenancy {
    /// The NCL shim header places `comp` at wire byte 8.
    const COMP_BYTE: usize = 8;

    fn of_wire(&self, wire: &[u8]) -> Option<u16> {
        let comp = *wire.get(Self::COMP_BYTE)?;
        let t = self.comp_tenant[comp as usize];
        (t != u16::MAX).then_some(t)
    }
}

/// A software switch instance executing one P4 program.
pub struct Switch {
    program: P4Program,
    /// Crate-visible so the control-plane module ([`crate::ctrl`]) can
    /// validate updates against the compiled table metadata.
    pub(crate) compiled: Arc<CompiledProgram>,
    /// The direct-threaded lowering of `compiled` (built once, in `new`).
    threaded: ThreadedProgram,
    /// Crate-visible so [`crate::ctrl`] can bump the update counters.
    pub(crate) st: RuntimeState,
    /// Which engine `process` runs ([`Switch::set_engine`]).
    engine: Engine,
    /// Packets processed (telemetry). Mirrors `counters().packets`; kept
    /// as a field for existing callers.
    pub packets_processed: u64,
    /// Opt-in per-packet wall-time histogram ([`Switch::set_timing`]).
    timing: Option<netcl_obs::Histogram>,
    /// Per-tenant attribution config; `None` (the default) costs nothing
    /// on the packet path.
    tenancy: Option<Box<Tenancy>>,
}

impl Switch {
    /// Instantiates a switch for `program` with zeroed registers. The
    /// program is compiled to flat form — and lowered to direct-threaded
    /// form — here, once.
    pub fn new(program: P4Program) -> Switch {
        let compiled = Arc::new(compile::compile(&program));
        let threaded = threaded::lower(&compiled);
        let engine = Engine::default();
        let st = RuntimeState::new(&compiled, engine.name());
        Switch {
            program,
            compiled,
            threaded,
            st,
            engine,
            packets_processed: 0,
            timing: None,
            tenancy: None,
        }
    }

    // ---- observability (DESIGN.md §12) ----------------------------------

    /// The data-plane counters accumulated so far. Counted identically by
    /// both engines, so they participate in the differential contract.
    pub fn counters(&self) -> &SwitchCounters {
        &self.st.counters
    }

    /// Zeroes all counters (e.g. between a warmup and a measured run).
    pub fn reset_counters(&mut self) {
        self.st.counters = SwitchCounters::new(&self.compiled, self.engine.name());
        self.packets_processed = 0;
    }

    /// Per-table `(name, hits, misses)`, in table-state order. Duplicated
    /// lookup tables (`name__dupN`) report separately.
    pub fn table_stats(&self) -> impl Iterator<Item = (&str, u64, u64)> {
        self.compiled.table_states.iter().enumerate().map(|(i, t)| {
            (t.name.as_str(), self.st.counters.table_hits[i], self.st.counters.table_misses[i])
        })
    }

    // ---- multi-tenant attribution (DESIGN.md §17) ------------------------

    /// Configures per-tenant counter attribution: `comps` maps each NCL
    /// computation id to its owning tenant (the merge driver's
    /// `TenantMapEntry` provides exactly this). Packets classify by the
    /// shim's `comp` byte at ingress; comps not listed attribute to
    /// nobody. Survives engine switches and [`Switch::reset_counters`],
    /// but not a device restart (a fresh switch knows no tenants — the
    /// simulator's restart hooks re-apply it, like real control planes
    /// re-push config).
    pub fn set_tenants(&mut self, comps: &[(u8, u16)]) {
        let mut map = [u16::MAX; 256];
        for &(comp, tenant) in comps {
            map[comp as usize] = tenant;
        }
        self.tenancy = Some(Box::new(Tenancy { comp_tenant: map }));
    }

    /// Drops tenant attribution; existing per-tenant counts remain until
    /// [`Switch::reset_counters`].
    pub fn clear_tenants(&mut self) {
        self.tenancy = None;
    }

    /// One tenant's counter sub-view (zeroes when it processed nothing).
    pub fn tenant_counters(&self, tenant: u16) -> TenantCounters {
        self.st.counters.tenants.get(&tenant).copied().unwrap_or_default()
    }

    /// One tenant's `(hits, misses)` summed over the tables its namespace
    /// owns. Derived from the per-table counters and the `t<id>__` name
    /// prefix — tables dispatch behind the tenant's comp match, so
    /// per-name totals *are* per-tenant totals, with no per-packet cost.
    pub fn tenant_table_stats(&self, tenant: u16) -> (u64, u64) {
        let mut hits = 0;
        let mut misses = 0;
        for (i, t) in self.compiled.table_states.iter().enumerate() {
            if netcl_util::tenant::of(&t.name) == Some(tenant) {
                hits += self.st.counters.table_hits[i];
                misses += self.st.counters.table_misses[i];
            }
        }
        (hits, misses)
    }

    /// Enables (or disables) the per-packet wall-time histogram. Off by
    /// default: when off, `process_into` never reads the clock.
    pub fn set_timing(&mut self, on: bool) {
        self.timing = if on { Some(netcl_obs::Histogram::new()) } else { None };
    }

    /// The per-packet wall-time histogram, when timing is enabled.
    pub fn timing(&self) -> Option<&netcl_obs::Histogram> {
        self.timing.as_ref()
    }

    /// The program this switch runs.
    pub fn program(&self) -> &P4Program {
        &self.program
    }

    /// The compiled form of the program.
    pub fn compiled(&self) -> &Arc<CompiledProgram> {
        &self.compiled
    }

    /// Selects the execution engine. Registers, tables, and counters carry
    /// over; only the counters' backend label changes.
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
        self.st.counters.backend = engine.name();
    }

    /// The currently selected engine.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Back-compat engine toggle: `true` selects the interpreter oracle,
    /// `false` the compiled pc-loop (what the pre-[`Engine`] flag meant —
    /// note *not* the threaded default; use [`Switch::set_engine`]).
    pub fn set_interpreted(&mut self, interpreted: bool) {
        self.set_engine(if interpreted { Engine::Interpreted } else { Engine::Compiled });
    }

    /// Whether the interpreter oracle is selected.
    pub fn interpreted(&self) -> bool {
        self.engine == Engine::Interpreted
    }

    /// A packet shaped for this switch's slot table, for reuse with
    /// [`Switch::process_into`].
    pub fn new_packet(&self) -> Packet {
        Packet::with_slots(Arc::clone(&self.compiled.slots))
    }

    // ---- control plane (backs `_managed_` memory, §V-B) -----------------

    /// Reads one register element.
    pub fn register_read(&self, name: &str, index: usize) -> Option<u64> {
        let i = *self.compiled.reg_index.get(name)?;
        self.st.registers[i as usize].get(index).copied()
    }

    /// Writes one register element.
    pub fn register_write(&mut self, name: &str, index: usize, value: u64) -> bool {
        let Some(&i) = self.compiled.reg_index.get(name) else { return false };
        match self.st.registers[i as usize].get_mut(index) {
            Some(cell) => {
                *cell = value;
                true
            }
            None => false,
        }
    }

    /// All registers with their current contents (diagnostics and
    /// differential tests).
    pub fn registers(&self) -> impl Iterator<Item = (&str, &[u64])> {
        self.compiled
            .regs
            .iter()
            .zip(&self.st.registers)
            .map(|(r, cells)| (r.name.as_str(), cells.as_slice()))
    }

    /// Inserts a table entry (control-plane `_managed_ _lookup_` update).
    pub fn table_insert(&mut self, table: &str, entry: TableEntry) -> bool {
        match self.compiled.table_index.get(table) {
            Some(&i) => {
                self.st.tables[i as usize].push(entry);
                true
            }
            None => false,
        }
    }

    /// Removes entries matching `key` from a table.
    pub fn table_delete(&mut self, table: &str, key: &[EntryKey]) -> usize {
        match self.compiled.table_index.get(table) {
            Some(&i) => {
                let t = &mut self.st.tables[i as usize];
                let before = t.len();
                t.retain(|e| e.keys != key);
                before - t.len()
            }
            None => 0,
        }
    }

    /// Replaces every entry of a table.
    pub fn table_set(&mut self, table: &str, entries: Vec<TableEntry>) -> bool {
        match self.compiled.table_index.get(table) {
            Some(&i) => {
                self.st.tables[i as usize] = entries;
                true
            }
            None => false,
        }
    }

    /// Tables whose names start with `prefix` (lookup duplication creates
    /// `name`, `name__dup1`, ... that must be updated together).
    pub fn tables_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.compiled
            .table_states
            .iter()
            .filter(|t| t.name.starts_with(prefix))
            .map(|t| t.name.clone())
            .collect()
    }

    // ---- packet processing ----------------------------------------------

    /// Runs one packet through parser → ingress → deparser, allocating a
    /// fresh packet and output buffer. Prefer [`Switch::process_into`] on
    /// hot paths.
    pub fn process(&mut self, wire: &[u8]) -> Result<(Packet, Vec<u8>), SwitchError> {
        let mut pkt = self.new_packet();
        let mut out = Vec::new();
        self.process_into(wire, &mut pkt, &mut out)?;
        Ok((pkt, out))
    }

    /// Runs one packet, reusing the caller's packet and output buffer. On
    /// the compiled path this performs no heap allocation for fields the
    /// program interned (errors and payload growth aside).
    pub fn process_into(
        &mut self,
        wire: &[u8],
        pkt: &mut Packet,
        out: &mut Vec<u8>,
    ) -> Result<(), SwitchError> {
        let watch = self.timing.as_ref().map(|_| netcl_obs::Stopwatch::start());
        let r = self.process_inner(wire, pkt, out);
        if let (Some(w), Some(h)) = (watch, self.timing.as_mut()) {
            h.record(w.elapsed_ns());
        }
        if r.is_err() {
            self.st.counters.errors += 1;
        }
        r
    }

    fn process_inner(
        &mut self,
        wire: &[u8],
        pkt: &mut Packet,
        out: &mut Vec<u8>,
    ) -> Result<(), SwitchError> {
        self.packets_processed += 1;
        self.st.counters.packets += 1;
        // Tenant attribution brackets the engine run: the comp byte names
        // the tenant, and the reg-action delta across the run is exactly
        // the tenant's (kernels dispatch exclusively on comp).
        let tenant = self.tenancy.as_deref().and_then(|t| t.of_wire(wire));
        let ra_before = if tenant.is_some() { self.st.counters.reg_action_execs } else { 0 };
        out.clear();
        pkt.ensure_slots(&self.compiled.slots);
        pkt.reset();
        let r = match self.engine {
            Engine::Interpreted => {
                let mut run = |sw: &mut Switch| -> Result<(), SwitchError> {
                    sw.parse_interp(wire, pkt)?;
                    let controls = sw.program.controls.clone();
                    for control in &controls {
                        let apply = control.apply.clone();
                        sw.exec_stmts(&apply, control, pkt)?;
                    }
                    sw.deparse_interp(pkt, out)
                };
                run(self)
            }
            // Split borrows: the program forms and the runtime state are
            // disjoint fields, so no per-packet `Arc` refcount traffic.
            Engine::Compiled => {
                let Switch { compiled, st, .. } = self;
                run_compiled(compiled, wire, pkt, out, st)
            }
            Engine::Threaded => {
                let Switch { threaded, st, .. } = self;
                threaded::run_threaded(threaded, wire, pkt, out, st)
            }
        };
        if let Some(tid) = tenant {
            let delta = self.st.counters.reg_action_execs - ra_before;
            let e = self.st.counters.tenants.entry(tid).or_default();
            e.packets += 1;
            e.reg_action_execs += delta;
        }
        r
    }

    // ---- batched processing (DESIGN.md §13) -----------------------------

    /// Runs every packet of `batch` through the pipeline, in order,
    /// recording per-packet outcomes and outputs in the batch. Semantically
    /// identical to calling [`Switch::process_into`] once per packet — the
    /// differential tests assert outputs, errors, and counters match — but
    /// executed **phase-split** on the compiled/threaded engines: parse
    /// sweeps the whole batch over the contiguous wire arena, then the op
    /// stream runs per packet *in order* (register/RNG mutation order is
    /// observable), then deparse sweeps again. Parse and deparse touch no
    /// cross-packet state, so hoisting them is unobservable, and each
    /// phase runs its one specialized loop branch-predictably over the
    /// batch instead of interleaving three (DESIGN.md §14).
    ///
    /// Falls back to the per-packet loop when the interpreter oracle or
    /// per-packet timing is active (timing needs a whole-pipeline stopwatch
    /// per packet).
    pub fn process_batch(&mut self, batch: &mut PacketBatch) {
        if self.engine == Engine::Interpreted || self.timing.is_some() {
            let _ = self.process_batch_from(batch, 0, |_| false);
            return;
        }
        let Switch { compiled, threaded, st, packets_processed, engine, tenancy, .. } = self;
        let cp: &CompiledProgram = compiled;
        let tenancy = tenancy.as_deref();
        batch.prepare_split(&cp.slots);
        let n = batch.len();
        // Each engine gets its own monomorphized phase loops (the closure
        // args devirtualize at the call sites below).
        let errors = {
            let parts = batch.phase_parts();
            match engine {
                Engine::Threaded => run_phases(
                    parts,
                    st,
                    tenancy,
                    |wire, pkt, _| threaded::parse_threaded(threaded, wire, pkt),
                    |pkt, st| threaded::exec_threaded(threaded, pkt, st),
                    |pkt, out| threaded::deparse_threaded(threaded, pkt, out),
                ),
                _ => run_phases(
                    parts,
                    st,
                    tenancy,
                    |wire, pkt, st| parse_compiled(cp, wire, pkt, st),
                    |pkt, st| {
                        cp.applies.iter().try_for_each(|&region| exec_region(cp, region, pkt, st))
                    },
                    |pkt, out| deparse_compiled(cp, pkt, out),
                ),
            }
        };
        if errors > 0 {
            batch.note_errors();
        }
        st.counters.packets += n as u64;
        st.counters.errors += errors;
        *packets_processed += n as u64;
    }

    /// Batched processing with an early-stop predicate, for callers that
    /// must interleave work mid-batch (the simulator stops at a packet
    /// requesting recirculation, finishes its extra passes scalar-style,
    /// then resumes — preserving the exact scalar order of register and RNG
    /// mutations).
    ///
    /// Packets `start..batch.len()` are processed in order. After each
    /// *successful* packet, `stop` inspects its output; returning `true`
    /// halts the batch and this returns `Some(i)` with packet `i` already
    /// processed and packets `i+1..` untouched. Returns `None` once the
    /// batch is exhausted.
    pub fn process_batch_from(
        &mut self,
        batch: &mut PacketBatch,
        start: usize,
        mut stop: impl FnMut(&[u8]) -> bool,
    ) -> Option<usize> {
        batch.prepare(&self.compiled.slots);
        let end = batch.len();
        if self.engine == Engine::Interpreted {
            // The oracle runs the scalar entry point per packet: it exists
            // to be obviously equivalent, not fast.
            for i in start..end {
                let (r, hit) = {
                    let (wire, pkt, out) = batch.slot_mut(i);
                    let r = self.process_into(wire, pkt, out);
                    let hit = r.is_ok() && stop(out);
                    (r, hit)
                };
                batch.set_outcome(i, r);
                if hit {
                    return Some(i);
                }
            }
            return None;
        }
        let Switch { compiled, threaded, st, timing, packets_processed, engine, tenancy, .. } =
            self;
        let cp: &CompiledProgram = compiled;
        let tenancy = tenancy.as_deref();
        let mut done = 0u64;
        let mut stopped = None;
        for i in start..end {
            done += 1;
            let watch = timing.as_ref().map(|_| netcl_obs::Stopwatch::start());
            let (r, hit) = {
                let (wire, pkt, out) = batch.slot_mut(i);
                // `prepare` already shaped the packet; skip `ensure_slots`.
                out.clear();
                pkt.reset();
                let tenant = tenancy.and_then(|t| t.of_wire(wire));
                let ra_before = if tenant.is_some() { st.counters.reg_action_execs } else { 0 };
                let r = match engine {
                    Engine::Threaded => threaded::run_threaded(threaded, wire, pkt, out, st),
                    _ => run_compiled(cp, wire, pkt, out, st),
                };
                if let Some(tid) = tenant {
                    let delta = st.counters.reg_action_execs - ra_before;
                    let e = st.counters.tenants.entry(tid).or_default();
                    e.packets += 1;
                    e.reg_action_execs += delta;
                }
                let hit = r.is_ok() && stop(out);
                (r, hit)
            };
            if let (Some(w), Some(h)) = (watch, timing.as_mut()) {
                h.record(w.elapsed_ns());
            }
            if r.is_err() {
                st.counters.errors += 1;
            }
            batch.set_outcome(i, r);
            if hit {
                stopped = Some(i);
                break;
            }
        }
        // Bulk counter update: totals match the scalar per-packet
        // increments for every packet actually attempted.
        st.counters.packets += done;
        *packets_processed += done;
        stopped
    }

    // ---- interpreter oracle ---------------------------------------------

    fn header_def(&self, instance: &str) -> Option<&HeaderDef> {
        let ty = format!("{instance}_t");
        self.program.headers.iter().find(|h| h.name == ty)
    }

    fn parse_interp(&self, wire: &[u8], pkt: &mut Packet) -> Result<(), SwitchError> {
        let Some(parser) = self.program.parser.clone() else {
            pkt.payload.extend_from_slice(wire);
            return Ok(());
        };
        let mut cursor = 0usize;
        let mut state = "start".to_string();
        let mut hops = 0;
        while state != "accept" && state != "reject" {
            hops += 1;
            if hops > 64 {
                return Err(SwitchError::Unknown("parser loop".into()));
            }
            let Some(st) = parser.states.iter().find(|s| s.name == state) else {
                return Err(SwitchError::Unknown(format!("parser state `{state}`")));
            };
            for ex in &st.extracts {
                let instance = ex.strip_prefix("hdr.").unwrap_or(ex).to_string();
                let def = self
                    .header_def(&instance)
                    .ok_or_else(|| SwitchError::Unknown(format!("header `{instance}`")))?;
                for i in 0..def.stack {
                    for (fname, bits) in &def.fields {
                        let v = read_field(wire, &mut cursor, *bits)
                            .map_err(|e| field_err(e, &instance))?;
                        let path = if def.stack > 1 {
                            format!("{instance}[{i}].{fname}")
                        } else {
                            format!("{instance}.{fname}")
                        };
                        pkt.set(&path, v);
                    }
                }
                pkt.set_valid(&instance, true);
            }
            state = match &st.transition {
                Transition::Accept => "accept".into(),
                Transition::Reject => "reject".into(),
                Transition::Direct(t) => t.clone(),
                Transition::Select { selector, cases, default } => {
                    let widths = self.width_fn();
                    let (v, _) = eval(selector, pkt, &widths);
                    cases
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, t)| t.clone())
                        .unwrap_or_else(|| default.clone())
                }
            };
        }
        pkt.payload.extend_from_slice(&wire[cursor..]);
        Ok(())
    }

    fn deparse_interp(&self, pkt: &Packet, out: &mut Vec<u8>) -> Result<(), SwitchError> {
        for &id in pkt.order_ids() {
            if !pkt.is_valid_id(id) {
                continue;
            }
            let instance = pkt.instance_name(id);
            let def = self
                .header_def(instance)
                .ok_or_else(|| SwitchError::Unknown(format!("header `{instance}`")))?;
            for i in 0..def.stack {
                for (fname, bits) in &def.fields {
                    let path = if def.stack > 1 {
                        format!("{instance}[{i}].{fname}")
                    } else {
                        format!("{instance}.{fname}")
                    };
                    write_field(out, pkt.get(&path), *bits).map_err(|e| field_err(e, instance))?;
                }
            }
        }
        out.extend_from_slice(&pkt.payload);
        Ok(())
    }

    fn width_fn(&self) -> impl Fn(&str) -> u32 + '_ {
        move |path: &str| self.compiled.field_widths.get(path).copied().unwrap_or(32)
    }

    fn exec_stmts(
        &mut self,
        stmts: &[Stmt],
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<(), SwitchError> {
        for s in stmts {
            self.exec_stmt(s, control, pkt)?;
        }
        Ok(())
    }

    fn assign(&self, pkt: &mut Packet, dst: &Expr, value: u64) {
        let Expr::Field(segs) = dst else { return };
        let path = canonical(segs);
        let width = self.compiled.field_widths.get(&path).copied().unwrap_or(32);
        let v = value & mask_of(width);
        if segs.first().map(|s| s.name.as_str()) == Some("meta") {
            pkt.set_meta(&path, v);
        } else {
            pkt.set(&path, v);
        }
    }

    fn exec_stmt(
        &mut self,
        stmt: &Stmt,
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<(), SwitchError> {
        match stmt {
            Stmt::Assign(dst, rhs) => {
                let widths = self.width_fn();
                let (v, _) = eval(rhs, pkt, &widths);
                self.assign(pkt, dst, v);
            }
            Stmt::CallAction(name) => {
                let a = control
                    .action(name)
                    .ok_or_else(|| SwitchError::Unknown(format!("action `{name}`")))?
                    .clone();
                self.exec_action(&a, &[], control, pkt)?;
            }
            Stmt::ApplyTable(name) => {
                self.apply_table(name, control, pkt)?;
            }
            Stmt::ExecuteRegisterAction { dst, ra, index } => {
                self.st.counters.reg_action_execs += 1;
                let radef = control
                    .register_action(ra)
                    .ok_or_else(|| SwitchError::Unknown(format!("RegisterAction `{ra}`")))?
                    .clone();
                let reg = control.register(&radef.register).ok_or_else(|| {
                    SwitchError::Unknown(format!("register `{}`", radef.register))
                })?;
                let bits = reg.elem_bits;
                let widths = self.width_fn();
                let (idx, _) = eval(index, pkt, &widths);
                let cond = match &radef.cond {
                    Some(c) => eval(c, pkt, &widths).0 != 0,
                    None => true,
                };
                let mut ops = Vec::new();
                for o in &radef.operands {
                    ops.push(eval(o, pkt, &widths).0 & mask_of(bits));
                }
                drop(widths);
                let reg_i =
                    self.compiled.reg_index.get(&radef.register).copied().ok_or_else(|| {
                        SwitchError::Unknown(format!("register `{}`", radef.register))
                    })?;
                let cells = &mut self.st.registers[reg_i as usize];
                let i = (idx as usize).min(cells.len().saturating_sub(1));
                let old = cells.get(i).copied().unwrap_or(0);
                let sty = netcl_sema::Ty::Int { bits: (bits as u8).clamp(8, 64), signed: false };
                let (new, ret) = radef.op.execute(old, cond, &ops, sty);
                if let Some(cell) = cells.get_mut(i) {
                    *cell = new & mask_of(bits);
                }
                if let Some(d) = dst {
                    self.assign(pkt, d, ret);
                }
            }
            Stmt::HashGet { dst, hash, args } => {
                let h = control
                    .hashes
                    .iter()
                    .find(|h| h.name == *hash)
                    .ok_or_else(|| SwitchError::Unknown(format!("hash `{hash}`")))?
                    .clone();
                let widths = self.width_fn();
                // Hash the concatenated little-endian bytes of all args, as
                // the IR interpreter does for its single-key form.
                let mut key = 0u64;
                let mut key_bits = 0u32;
                for a in args {
                    let (v, w) = eval(a, pkt, &widths);
                    key |= (v & mask_of(w)) << key_bits.min(63);
                    key_bits += w;
                }
                let key_bytes = key_bits.div_ceil(8).max(1);
                let v = h.algo.compute(key, key_bytes, h.out_bits.min(64) as u8);
                drop(widths);
                self.assign(pkt, dst, v);
            }
            Stmt::If { cond, then, els } => {
                let taken = match cond {
                    Expr::TableHit(t) => self.apply_table(t, control, pkt)?,
                    Expr::TableMiss(t) => !self.apply_table(t, control, pkt)?,
                    other => {
                        let widths = self.width_fn();
                        eval(other, pkt, &widths).0 != 0
                    }
                };
                if taken {
                    self.exec_stmts(then, control, pkt)?;
                } else {
                    self.exec_stmts(els, control, pkt)?;
                }
            }
            Stmt::ExternCall { dst, func, args } => {
                self.st.counters.extern_calls += 1;
                let widths = self.width_fn();
                let mut vals = Vec::new();
                for a in args {
                    vals.push(eval(a, pkt, &widths).0);
                }
                drop(widths);
                let v = match func.as_str() {
                    "random" => {
                        // SplitMix64, mirroring the IR interpreter's RNG.
                        self.st.rng = self.st.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = self.st.rng;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        z ^ (z >> 31)
                    }
                    other => match other.split_once('_') {
                        Some((target, name)) => eval_intrinsic(target, name, &vals),
                        None => eval_intrinsic("", other, &vals),
                    },
                };
                if let Some(d) = dst {
                    self.assign(pkt, d, v);
                }
            }
            Stmt::SetValid(e) => {
                if let Expr::Field(segs) = e {
                    let inst = instance_of(segs);
                    pkt.set_valid(&inst, true);
                }
            }
            Stmt::SetInvalid(e) => {
                if let Expr::Field(segs) = e {
                    let inst = instance_of(segs);
                    pkt.set_valid(&inst, false);
                }
            }
            Stmt::Exit => {}
        }
        Ok(())
    }

    /// Applies a table; returns hit/miss.
    fn apply_table(
        &mut self,
        name: &str,
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<bool, SwitchError> {
        let t = control
            .table(name)
            .ok_or_else(|| SwitchError::Unknown(format!("table `{name}`")))?
            .clone();
        let widths = self.width_fn();
        let key_vals: Vec<u64> = t.keys.iter().map(|(k, _)| eval(k, pkt, &widths).0).collect();
        drop(widths);
        let state = self.compiled.table_index.get(name).copied();
        let entries = state.map(|i| self.st.tables[i as usize].clone()).unwrap_or_default();
        let hit = entries.iter().find(|e| {
            e.keys.len() == key_vals.len()
                && e.keys.iter().zip(&key_vals).all(|(ek, kv)| match ek {
                    EntryKey::Value(v) => v == kv,
                    EntryKey::Range(lo, hi) => lo <= kv && kv <= hi,
                })
        });
        if let Some(i) = state {
            match hit {
                Some(_) => self.st.counters.table_hits[i as usize] += 1,
                None => self.st.counters.table_misses[i as usize] += 1,
            }
        }
        match hit {
            Some(entry) => {
                let entry = entry.clone();
                if let Some(a) = control.action(&entry.action) {
                    let a = a.clone();
                    self.exec_action(&a, &entry.args, control, pkt)?;
                }
                Ok(true)
            }
            None => {
                if t.default_action != "NoAction" {
                    if let Some(a) = control.action(&t.default_action) {
                        let a = a.clone();
                        self.exec_action(&a, &[], control, pkt)?;
                    }
                }
                Ok(false)
            }
        }
    }

    fn exec_action(
        &mut self,
        action: &ActionDef,
        args: &[u64],
        control: &ControlDef,
        pkt: &mut Packet,
    ) -> Result<(), SwitchError> {
        self.st.counters.action_calls += 1;
        // Bind parameters as metadata under their bare names (action-local).
        let saved: Vec<(String, Option<u64>)> =
            action.params.iter().map(|(n, _)| (n.clone(), pkt.meta_opt(n))).collect();
        for ((n, w), v) in action.params.iter().zip(args) {
            pkt.set_meta(n, v & mask_of(*w));
        }
        self.exec_stmts(&action.body, control, pkt)?;
        for (n, old) in saved {
            match old {
                Some(v) => pkt.set_meta(&n, v),
                None => pkt.meta_remove(&n),
            }
        }
        Ok(())
    }
}

// ---- compiled fast path -------------------------------------------------

/// The phase-split batch pipeline, monomorphized per engine via the three
/// phase closures. Sweeps [`crate::batch::PHASE_WINDOW`]-sized windows: within a window
/// every packet is parsed, then executed strictly in order, then
/// deparsed — so each phase runs one specialized loop branch-predictably,
/// while the live parsed state stays bounded (the window's scratch
/// packets) and L1-warm for the exec pass no matter the batch size.
/// Windows run in packet order, so the observable order of register/RNG
/// mutations is exactly the scalar loop's.
#[allow(clippy::type_complexity)]
fn run_phases<P, E, D>(
    parts: (&[u8], &[(u32, u32)], &mut [Packet], &mut [Vec<u8>], &mut [Result<(), SwitchError>]),
    st: &mut RuntimeState,
    tenancy: Option<&Tenancy>,
    parse: P,
    exec: E,
    deparse: D,
) -> u64
where
    P: Fn(&[u8], &mut Packet, &mut RuntimeState) -> Result<(), SwitchError>,
    E: Fn(&mut Packet, &mut RuntimeState) -> Result<(), SwitchError>,
    D: Fn(&Packet, &mut Vec<u8>) -> Result<(), SwitchError>,
{
    let (arena, ranges, pkts, outs, outcomes) = parts;
    let n = ranges.len();
    let window = pkts.len();
    let mut errors = 0u64;
    let mut base = 0usize;
    // Looks up the wire's tenant again per phase rather than buffering the
    // phase-1 result: the comp byte is one arena load and keeping the two
    // phases stateless preserves the window-scratch memory bound.
    let tenant_of = |i: usize| {
        tenancy.and_then(|t| {
            let (s, l) = ranges[i];
            t.of_wire(&arena[s as usize..(s + l) as usize])
        })
    };
    while base < n {
        let hi = (base + window).min(n);
        // Phase 1: parse the window off the shared arena. Per-tenant packet
        // counts are credited here for every attempted packet — parse
        // failures included — matching the scalar loop, which counts the
        // packet before the engine runs.
        for i in base..hi {
            let pkt = &mut pkts[i - base];
            pkt.reset();
            let (s, l) = ranges[i];
            if let Err(e) = parse(&arena[s as usize..(s + l) as usize], pkt, st) {
                outcomes[i] = Err(e);
                errors += 1;
            }
            if let Some(tid) = tenant_of(i) {
                st.counters.tenants.entry(tid).or_default().packets += 1;
            }
        }
        // Phase 2: execute, strictly in packet order. Register actions run
        // only here (never in parse/deparse), so bracketing exec with a
        // before/after delta attributes exactly the scalar loop's share —
        // parse-failed packets executed zero actions there too.
        for i in base..hi {
            if outcomes[i].is_err() {
                continue;
            }
            let tenant = tenant_of(i);
            let ra_before = if tenant.is_some() { st.counters.reg_action_execs } else { 0 };
            if let Err(e) = exec(&mut pkts[i - base], st) {
                outcomes[i] = Err(e);
                errors += 1;
            }
            if let Some(tid) = tenant {
                let delta = st.counters.reg_action_execs - ra_before;
                st.counters.tenants.entry(tid).or_default().reg_action_execs += delta;
            }
        }
        // Phase 3: deparse the survivors (outputs cleared for every
        // attempted packet, exactly like the scalar loop).
        for i in base..hi {
            let out = &mut outs[i];
            out.clear();
            if outcomes[i].is_err() {
                continue;
            }
            if let Err(e) = deparse(&pkts[i - base], out) {
                outcomes[i] = Err(e);
                errors += 1;
            }
        }
        base = hi;
    }
    errors
}

/// One full parse → ingress → deparse run on the compiled engine. Shared
/// by the scalar ([`Switch::process_into`]) and batched
/// ([`Switch::process_batch`]) entry points so they cannot drift apart.
fn run_compiled(
    cp: &CompiledProgram,
    wire: &[u8],
    pkt: &mut Packet,
    out: &mut Vec<u8>,
    st: &mut RuntimeState,
) -> Result<(), SwitchError> {
    parse_compiled(cp, wire, pkt, st)?;
    for &region in &cp.applies {
        exec_region(cp, region, pkt, st)?;
    }
    deparse_compiled(cp, pkt, out)
}

/// Evaluates a postfix expression region against the reusable stack.
/// Re-entrant: operates relative to the current stack top.
fn eval_ref(
    cp: &CompiledProgram,
    r: Span,
    pkt: &Packet,
    stack: &mut Vec<(u64, u32)>,
) -> (u64, u32) {
    let base = stack.len();
    for op in &cp.eops[r.start as usize..(r.start + r.len) as usize] {
        match *op {
            EOp::Const(v, w) => stack.push((v, w)),
            EOp::Load(s, w) => stack.push((pkt.value(s), w)),
            EOp::LoadBare { meta, hdr, width } => {
                let v = if pkt.meta_present(meta) { pkt.value(meta) } else { pkt.value(hdr) };
                stack.push((v, width));
            }
            EOp::LoadValid(i) => stack.push((pkt.is_valid_id(i) as u64, 1)),
            EOp::Bin(op) => {
                let (vb, wb) = stack.pop().expect("postfix underflow");
                let top = stack.last_mut().expect("postfix underflow");
                *top = bin_value(op, top.0, top.1, vb, wb);
            }
            EOp::Not => {
                let top = stack.last_mut().expect("postfix underflow");
                *top = ((top.0 == 0) as u64, 1);
            }
            EOp::BitNot => {
                let top = stack.last_mut().expect("postfix underflow");
                *top = ((!top.0) & mask_of(top.1), top.1);
            }
            EOp::Cast(bits) => {
                let top = stack.last_mut().expect("postfix underflow");
                *top = (top.0 & mask_of(bits), bits);
            }
            EOp::Slice(hi, lo) => {
                let top = stack.last_mut().expect("postfix underflow");
                let width = hi - lo + 1;
                *top = ((top.0 >> lo) & mask_of(width), width);
            }
        }
    }
    debug_assert_eq!(stack.len(), base + 1, "unbalanced postfix expression");
    stack.pop().expect("postfix produced no value")
}

fn assign_to(pkt: &mut Packet, dst: Dest, v: u64) {
    match dst {
        Dest::None => {}
        Dest::Header(s, w) => pkt.set_value(s, v & mask_of(w)),
        Dest::Meta(s, w) => pkt.set_meta_slot(s, v & mask_of(w)),
    }
}

fn fail(cp: &CompiledProgram, id: u32) -> SwitchError {
    SwitchError::Unknown(cp.fail_msg(id).to_string())
}

fn parse_compiled(
    cp: &CompiledProgram,
    wire: &[u8],
    pkt: &mut Packet,
    st: &mut RuntimeState,
) -> Result<(), SwitchError> {
    let Some(parser) = &cp.parser else {
        pkt.payload.extend_from_slice(wire);
        return Ok(());
    };
    let mut cursor = 0usize;
    let mut state = parser.start;
    let mut hops = 0;
    loop {
        if matches!(state, StateRef::Accept | StateRef::Reject) {
            break;
        }
        hops += 1;
        if hops > 64 {
            return Err(SwitchError::Unknown("parser loop".into()));
        }
        let si = match state {
            StateRef::State(i) => i as usize,
            StateRef::Unknown(m) => return Err(fail(cp, m)),
            _ => unreachable!(),
        };
        let cstate = &parser.states[si];
        for ex in &cstate.extracts {
            match *ex {
                CExtract::Unknown(m) => return Err(fail(cp, m)),
                CExtract::Header(inst) => {
                    let plan = cp.slots.layout(inst).expect("extract compiled for known header");
                    for &(slot, bits) in plan {
                        let v = read_field(wire, &mut cursor, bits)
                            .map_err(|e| field_err(e, pkt.instance_name(inst)))?;
                        pkt.set_value(slot, v);
                    }
                    pkt.set_valid_id(inst, true);
                }
            }
        }
        state = match &cstate.transition {
            CTransition::Accept => StateRef::Accept,
            CTransition::Reject => StateRef::Reject,
            CTransition::Direct(t) => *t,
            CTransition::Select { selector, cases, default } => {
                let (v, _) = eval_ref(cp, *selector, pkt, &mut st.stack);
                cases.iter().find(|(c, _)| *c == v).map(|(_, t)| *t).unwrap_or(*default)
            }
        };
    }
    pkt.payload.extend_from_slice(&wire[cursor..]);
    Ok(())
}

fn deparse_compiled(
    cp: &CompiledProgram,
    pkt: &Packet,
    out: &mut Vec<u8>,
) -> Result<(), SwitchError> {
    for &inst in pkt.order_ids() {
        if !pkt.is_valid_id(inst) {
            continue;
        }
        let Some(plan) = cp.slots.layout(inst) else {
            return Err(SwitchError::Unknown(format!("header `{}`", pkt.instance_name(inst))));
        };
        for &(slot, bits) in plan {
            write_field(out, pkt.value(slot), bits)
                .map_err(|e| field_err(e, pkt.instance_name(inst)))?;
        }
    }
    out.extend_from_slice(&pkt.payload);
    Ok(())
}

fn exec_region(
    cp: &CompiledProgram,
    region: Span,
    pkt: &mut Packet,
    st: &mut RuntimeState,
) -> Result<(), SwitchError> {
    let start = region.start as usize;
    let end = start + region.len as usize;
    let mut pc = start;
    while pc < end {
        match cp.cops[pc] {
            COp::Assign { dst, expr } => {
                let (v, _) = eval_ref(cp, expr, pkt, &mut st.stack);
                assign_to(pkt, dst, v);
            }
            COp::CallAction(a) => call_action(cp, a, 0, 0, pkt, st)?,
            COp::ApplyTable(t) => {
                apply_table_compiled(cp, t, pkt, st)?;
            }
            COp::ExecRegAction { dst, ra, index } => exec_reg_action(cp, dst, ra, index, pkt, st)?,
            COp::HashGet { dst, hash, args } => {
                let ch = &cp.hashes[hash as usize];
                let mut key = 0u64;
                let mut key_bits = 0u32;
                for ai in args.start..args.start + args.len {
                    let (v, w) = eval_ref(cp, cp.args[ai as usize], pkt, &mut st.stack);
                    key |= (v & mask_of(w)) << key_bits.min(63);
                    key_bits += w;
                }
                let key_bytes = key_bits.div_ceil(8).max(1);
                let v = ch.algo.compute(key, key_bytes, ch.out_bits.min(64) as u8);
                assign_to(pkt, dst, v);
            }
            COp::ExternCall { dst, func, args } => {
                st.counters.extern_calls += 1;
                let vbase = st.scratch.len();
                for ai in args.start..args.start + args.len {
                    let (v, _) = eval_ref(cp, cp.args[ai as usize], pkt, &mut st.stack);
                    st.scratch.push(v);
                }
                let v = match func {
                    ExternFn::Random => {
                        st.rng = st.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = st.rng;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        z ^ (z >> 31)
                    }
                    ExternFn::Intrinsic(i) => {
                        let (target, name) = &cp.externs[i as usize];
                        eval_intrinsic(target, name, &st.scratch[vbase..])
                    }
                };
                st.scratch.truncate(vbase);
                assign_to(pkt, dst, v);
            }
            COp::BranchExpr { cond, else_skip } => {
                if eval_ref(cp, cond, pkt, &mut st.stack).0 == 0 {
                    pc += else_skip as usize;
                }
            }
            COp::AssignBranch { dst, expr, else_skip } => {
                let (v, _) = eval_ref(cp, expr, pkt, &mut st.stack);
                assign_to(pkt, dst, v);
                // Branch on the stored (masked) value, exactly as the
                // unfused pair re-read it.
                let stored = match dst {
                    Dest::Header(s, _) | Dest::Meta(s, _) => pkt.value(s),
                    Dest::None => v,
                };
                if stored == 0 {
                    pc += else_skip as usize;
                }
            }
            COp::BranchTable { table, want_hit, else_skip } => {
                let hit = apply_table_compiled(cp, table, pkt, st)?;
                if hit != want_hit {
                    pc += else_skip as usize;
                }
            }
            COp::Jump(n) => pc += n as usize,
            COp::SetValid(i) => pkt.set_valid_id(i, true),
            COp::SetInvalid(i) => pkt.set_valid_id(i, false),
            COp::Fail(m) => return Err(fail(cp, m)),
        }
        pc += 1;
    }
    Ok(())
}

/// Invokes a compiled action. `args_base`/`args_len` index the scratch
/// buffer (stack discipline keeps nested calls allocation-free).
fn call_action(
    cp: &CompiledProgram,
    action: u32,
    args_base: usize,
    args_len: usize,
    pkt: &mut Packet,
    st: &mut RuntimeState,
) -> Result<(), SwitchError> {
    let a = &cp.actions[action as usize];
    st.counters.action_calls += 1;
    let save_base = st.param_saves.len();
    for &(slot, _) in &a.params {
        st.param_saves.push((slot, pkt.value(slot), pkt.meta_present(slot)));
    }
    for (i, &(slot, w)) in a.params.iter().take(args_len).enumerate() {
        let v = st.scratch[args_base + i];
        pkt.set_meta_slot(slot, v & mask_of(w));
    }
    let r = exec_region(cp, a.body, pkt, st);
    if r.is_ok() {
        // The interpreter restores bindings only on success; match it.
        for i in save_base..st.param_saves.len() {
            let (slot, val, present) = st.param_saves[i];
            if present {
                pkt.set_meta_slot(slot, val);
            } else {
                pkt.clear_meta_slot(slot);
            }
        }
    }
    st.param_saves.truncate(save_base);
    r
}

/// Applies a compiled table; returns hit/miss.
fn apply_table_compiled(
    cp: &CompiledProgram,
    table: u32,
    pkt: &mut Packet,
    st: &mut RuntimeState,
) -> Result<bool, SwitchError> {
    let t = &cp.tables[table as usize];
    let kbase = st.keys.len();
    for &(kref, _) in &t.keys {
        let v = eval_ref(cp, kref, pkt, &mut st.stack).0;
        st.keys.push(v);
    }
    let nkeys = st.keys.len() - kbase;
    let state = t.state as usize;
    let mut hit_idx = None;
    {
        let entries = &st.tables[state];
        let keys = &st.keys[kbase..];
        for (ei, e) in entries.iter().enumerate() {
            let matches = e.keys.len() == nkeys
                && e.keys.iter().zip(keys).all(|(ek, kv)| match ek {
                    EntryKey::Value(v) => v == kv,
                    EntryKey::Range(lo, hi) => lo <= kv && kv <= hi,
                });
            if matches {
                hit_idx = Some(ei);
                break;
            }
        }
    }
    st.keys.truncate(kbase);
    match hit_idx {
        Some(_) => st.counters.table_hits[state] += 1,
        None => st.counters.table_misses[state] += 1,
    }
    match hit_idx {
        Some(ei) => {
            // Entry actions resolve by name in the applying table's scope
            // (runtime entries may name any action; unknown ones are
            // silently skipped, as in the interpreter).
            let aid = t.action_ids.get(st.tables[state][ei].action.as_str()).copied();
            if let Some(aid) = aid {
                let abase = st.scratch.len();
                {
                    let RuntimeState { tables, scratch, .. } = st;
                    scratch.extend_from_slice(&tables[state][ei].args);
                }
                let n_args = st.scratch.len() - abase;
                let r = call_action(cp, aid, abase, n_args, pkt, st);
                st.scratch.truncate(abase);
                r?;
            }
            Ok(true)
        }
        None => {
            if let Some(aid) = t.default_action {
                call_action(cp, aid, 0, 0, pkt, st)?;
            }
            Ok(false)
        }
    }
}

fn exec_reg_action(
    cp: &CompiledProgram,
    dst: Dest,
    ra: u32,
    index: Span,
    pkt: &mut Packet,
    st: &mut RuntimeState,
) -> Result<(), SwitchError> {
    let cra = &cp.reg_actions[ra as usize];
    st.counters.reg_action_execs += 1;
    let (idx, _) = eval_ref(cp, index, pkt, &mut st.stack);
    let cond = match cra.cond {
        Some(c) => eval_ref(cp, c, pkt, &mut st.stack).0 != 0,
        None => true,
    };
    let bits = cra.elem_bits;
    let obase = st.scratch.len();
    for ai in cra.operands.start..cra.operands.start + cra.operands.len {
        let v = eval_ref(cp, cp.args[ai as usize], pkt, &mut st.stack).0 & mask_of(bits);
        st.scratch.push(v);
    }
    let sty = netcl_sema::Ty::Int { bits: (bits as u8).clamp(8, 64), signed: false };
    let (new, ret) = {
        let RuntimeState { registers, scratch, .. } = st;
        let cells = &mut registers[cra.reg as usize];
        let i = (idx as usize).min(cells.len().saturating_sub(1));
        let old = cells.get(i).copied().unwrap_or(0);
        let (new, ret) = cra.op.execute(old, cond, &scratch[obase..], sty);
        if let Some(cell) = cells.get_mut(i) {
            *cell = new & mask_of(bits);
        }
        (new, ret)
    };
    let _ = new;
    st.scratch.truncate(obase);
    assign_to(pkt, dst, ret);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use netcl_sema::builtins::{AtomicOp, AtomicRmw};

    /// A tiny hand-built program: parse one header, count packets in a
    /// register, set a field from a table.
    fn counting_program() -> P4Program {
        P4Program {
            name: "count".into(),
            target: Target::V1Model,
            headers: vec![HeaderDef {
                name: "h_t".into(),
                fields: vec![("k".into(), 16), ("v".into(), 16)],
                stack: 1,
            }],
            parser: Some(ParserDef {
                name: "P".into(),
                states: vec![ParserState {
                    name: "start".into(),
                    extracts: vec!["hdr.h".into()],
                    transition: Transition::Accept,
                }],
            }),
            controls: vec![ControlDef {
                name: "Ig".into(),
                locals: vec![("cnt".into(), 32)],
                registers: vec![RegisterDef { name: "R".into(), elem_bits: 32, size: 8 }],
                register_actions: vec![RegisterActionDef {
                    name: "bump".into(),
                    register: "R".into(),
                    op: AtomicOp { rmw: AtomicRmw::Add, cond: false, ret_new: true },
                    cond: None,
                    operands: vec![Expr::val(1, 32)],
                }],
                hashes: vec![],
                actions: vec![ActionDef {
                    name: "setv".into(),
                    params: vec![("x".into(), 16)],
                    body: vec![Stmt::Assign(Expr::field(&["hdr", "h", "v"]), Expr::field(&["x"]))],
                }],
                tables: vec![TableDef {
                    name: "t".into(),
                    keys: vec![(Expr::field(&["hdr", "h", "k"]), MatchKind::Exact)],
                    actions: vec!["setv".into()],
                    entries: vec![TableEntry {
                        keys: vec![EntryKey::Value(7)],
                        action: "setv".into(),
                        args: vec![99],
                    }],
                    default_action: "NoAction".into(),
                    size: 8,
                }],
                apply: vec![
                    Stmt::ExecuteRegisterAction {
                        dst: Some(Expr::field(&["meta", "cnt"])),
                        ra: "bump".into(),
                        index: Expr::val(0, 32),
                    },
                    Stmt::ApplyTable("t".into()),
                ],
            }],
        }
    }

    fn wire(k: u16, v: u16) -> Vec<u8> {
        let mut out = Vec::new();
        write_field(&mut out, k as u64, 16).unwrap();
        write_field(&mut out, v as u64, 16).unwrap();
        out
    }

    #[test]
    fn parse_execute_deparse_roundtrip() {
        let mut sw = Switch::new(counting_program());
        let (pkt, out) = sw.process(&wire(7, 0)).unwrap();
        assert_eq!(pkt.get("h.k"), 7);
        assert_eq!(pkt.get("h.v"), 99, "table hit writes v");
        // Deparsed bytes reflect the modified header.
        assert_eq!(out, wire(7, 99));
        // Register counted the packet.
        assert_eq!(sw.register_read("R", 0), Some(1));
        // Miss leaves v alone.
        let (_, out) = sw.process(&wire(8, 5)).unwrap();
        assert_eq!(out, wire(8, 5));
        assert_eq!(sw.register_read("R", 0), Some(2));
    }

    #[test]
    fn control_plane_table_updates() {
        let mut sw = Switch::new(counting_program());
        assert!(sw.table_insert(
            "t",
            TableEntry { keys: vec![EntryKey::Value(8)], action: "setv".into(), args: vec![11] }
        ));
        let (_, out) = sw.process(&wire(8, 0)).unwrap();
        assert_eq!(out, wire(8, 11));
        assert_eq!(sw.table_delete("t", &[EntryKey::Value(8)]), 1);
        let (_, out) = sw.process(&wire(8, 0)).unwrap();
        assert_eq!(out, wire(8, 0));
    }

    #[test]
    fn register_control_plane() {
        let mut sw = Switch::new(counting_program());
        assert!(sw.register_write("R", 3, 500));
        assert_eq!(sw.register_read("R", 3), Some(500));
        assert!(!sw.register_write("missing", 0, 1));
        assert!(!sw.register_write("R", 99, 1));
    }

    #[test]
    fn truncated_packet_rejected() {
        let mut sw = Switch::new(counting_program());
        let r = sw.process(&[0x01]);
        assert!(matches!(r, Err(SwitchError::Packet(PacketError::Truncated { .. }))));
        // The interpreter agrees.
        sw.set_interpreted(true);
        let r = sw.process(&[0x01]);
        assert!(matches!(r, Err(SwitchError::Packet(PacketError::Truncated { .. }))));
    }

    /// The compiled path and the interpreter oracle agree byte-for-byte on
    /// outputs and register state, including across control-plane updates.
    #[test]
    fn compiled_matches_interpreter() {
        let mut fast = Switch::new(counting_program());
        let mut oracle = Switch::new(counting_program());
        oracle.set_interpreted(true);
        assert!(!fast.interpreted());
        assert!(oracle.interpreted());

        let extra =
            TableEntry { keys: vec![EntryKey::Value(3)], action: "setv".into(), args: vec![42] };
        assert!(fast.table_insert("t", extra.clone()));
        assert!(oracle.table_insert("t", extra));

        for (k, v) in [(7u16, 0u16), (8, 5), (3, 1), (7, 7), (0xFFFF, 0xFFFF)] {
            let (pf, of) = fast.process(&wire(k, v)).unwrap();
            let (po, oo) = oracle.process(&wire(k, v)).unwrap();
            assert_eq!(of, oo, "output diverges on k={k} v={v}");
            assert_eq!(pf.get("h.v"), po.get("h.v"));
        }
        let fr: Vec<_> = fast.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
        let or: Vec<_> = oracle.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
        assert_eq!(fr, or, "register state diverges");
        // Both engines count the same events: counters are part of the
        // differential contract.
        assert_eq!(fast.counters(), oracle.counters(), "counters diverge");
    }

    /// Counters track packets, table hits/misses, reg-action executions and
    /// errors, and reset cleanly.
    #[test]
    fn counters_track_data_plane_events() {
        let mut sw = Switch::new(counting_program());
        sw.set_timing(true);
        sw.process(&wire(7, 0)).unwrap(); // hit
        sw.process(&wire(8, 5)).unwrap(); // miss
        sw.process(&[0x01]).unwrap_err(); // parse error
        let c = sw.counters();
        assert_eq!(c.packets, 3);
        assert_eq!(c.errors, 1);
        assert_eq!(c.reg_action_execs, 2);
        assert_eq!(c.total_hits(), 1);
        assert_eq!(c.total_misses(), 1);
        assert_eq!(c.action_calls, 1, "only the hit ran `setv`");
        let stats: Vec<_> = sw.table_stats().collect();
        assert_eq!(stats, vec![("t", 1, 1)]);
        // Timing recorded one sample per completed pipeline run.
        assert_eq!(sw.timing().unwrap().count(), 3);
        sw.reset_counters();
        assert_eq!(sw.counters().packets, 0);
        assert_eq!(sw.counters().total_hits(), 0);
    }

    /// Deferred compilation errors surface with the interpreter's message,
    /// at the same (execution) time.
    #[test]
    fn unknown_action_fails_lazily_like_interpreter() {
        let mut p = counting_program();
        // Reference a missing action, but only behind a miss-only branch.
        p.controls[0].apply = vec![Stmt::If {
            cond: Expr::Bin(
                P4BinOp::Eq,
                Box::new(Expr::field(&["hdr", "h", "k"])),
                Box::new(Expr::val(1, 16)),
            ),
            then: vec![Stmt::CallAction("missing".into())],
            els: vec![],
        }];
        let mut fast = Switch::new(p.clone());
        let mut oracle = Switch::new(p);
        oracle.set_interpreted(true);
        // Not taken: no error.
        assert!(fast.process(&wire(2, 0)).is_ok());
        assert!(oracle.process(&wire(2, 0)).is_ok());
        // Taken: identical error text.
        let ef = fast.process(&wire(1, 0)).unwrap_err();
        let eo = oracle.process(&wire(1, 0)).unwrap_err();
        assert_eq!(ef, eo);
        assert_eq!(ef, SwitchError::Unknown("action `missing`".into()));
    }

    /// `process_into` reuses caller buffers and matches `process`.
    #[test]
    fn process_into_reuses_buffers() {
        let mut sw = Switch::new(counting_program());
        let mut pkt = sw.new_packet();
        let mut out = Vec::new();
        sw.process_into(&wire(7, 0), &mut pkt, &mut out).unwrap();
        assert_eq!(out, wire(7, 99));
        // Second run reuses the same packet without stale state.
        sw.process_into(&wire(8, 5), &mut pkt, &mut out).unwrap();
        assert_eq!(out, wire(8, 5));
        assert_eq!(pkt.get("h.v"), 5);
        // A default packet is re-shaped on entry.
        let mut stale = Packet::default();
        sw.process_into(&wire(7, 0), &mut stale, &mut out).unwrap();
        assert_eq!(out, wire(7, 99));
    }

    /// Differential test: the compiled Fig. 4 kernel behaves identically on
    /// the IR interpreter and on the generated P4 running here.
    #[test]
    fn generated_p4_matches_ir_interpreter() {
        let unit = netcl::Compiler::new(netcl::CompileOptions::default())
            .compile("fig4.ncl", FIG4)
            .unwrap();
        let dev = &unit.devices[0];
        let mut sw = Switch::new(dev.tna_p4.clone());
        let module = &dev.tna_ir;
        let kernel = &module.kernels[0];
        let mut st = netcl_ir::interp::DeviceState::new(module);
        let mut env = netcl_ir::interp::ExecEnv { to: 1, ..Default::default() };

        for (op, k) in [(1u64, 2u64), (1, 99), (1, 2), (0, 3), (1, 99), (1, 4)] {
            // IR side.
            let mut args = vec![vec![op], vec![k], vec![0u64], vec![0u64], vec![0u64]];
            let r =
                netcl_ir::interp::execute(kernel, module, &mut st, &mut args, &mut env).unwrap();

            // P4 side: build the NetCL wire packet (Fig. 10 layout).
            let mut w = Vec::new();
            write_field(&mut w, 1, 16).unwrap(); // src
            write_field(&mut w, 2, 16).unwrap(); // dst
            write_field(&mut w, 1, 16).unwrap(); // from
            write_field(&mut w, 1, 16).unwrap(); // to (this device)
            write_field(&mut w, 1, 8).unwrap(); // comp
            write_field(&mut w, 0, 8).unwrap(); // action
            write_field(&mut w, 0, 16).unwrap(); // target
            write_field(&mut w, op, 8).unwrap(); // a0_op
            write_field(&mut w, k, 32).unwrap(); // a1_k
            write_field(&mut w, 0, 32).unwrap(); // a2_v
            write_field(&mut w, 0, 8).unwrap(); // a3_hit
            write_field(&mut w, 0, 32).unwrap(); // a4_hot
            let (pkt, _) = sw.process(&w).unwrap();

            assert_eq!(
                pkt.get("ncl.action"),
                r.action.code() as u64,
                "action diverges on op={op} k={k}"
            );
            assert_eq!(pkt.get("args_c1.a2_v"), args[2][0], "v diverges on k={k}");
            assert_eq!(pkt.get("args_c1.a3_hit"), args[3][0], "hit diverges on k={k}");
            assert_eq!(pkt.get("args_c1.a4_hot"), args[4][0], "hot diverges on k={k}");
        }
        // Register state agrees too (CMS partitions).
        for p in 0..3 {
            let name = format!("cms__{p}");
            let (mem, g) = module.global_by_name(&name).unwrap();
            for i in 0..g.element_count() {
                if st.read(mem, i) != 0 {
                    assert_eq!(
                        sw.register_read(&name, i),
                        Some(st.read(mem, i)),
                        "{name}[{i}] diverges"
                    );
                }
            }
        }
    }

    const FIG4: &str = r#"
#define CMS_HASHES 3
#define THRESH 512
#define GET_REQ 1
_managed_ unsigned cms[CMS_HASHES][65536];
_net_ void sketch(unsigned k, unsigned &hot) {
  unsigned c[CMS_HASHES];
  c[0] = ncl::atomic_sadd_new(&cms[0][ncl::xor16(k)], 1);
  c[1] = ncl::atomic_sadd_new(&cms[1][ncl::crc32<16>(k)], 1);
  c[2] = ncl::atomic_sadd_new(&cms[2][ncl::crc16(k)], 1);
  for (auto i = 1; i < CMS_HASHES; ++i)
    if (c[i] < c[0]) c[0] = c[i];
  hot = c[0] > THRESH ? c[0] : 0;
}
_net_ _lookup_ ncl::kv<unsigned, unsigned> cache[] = {{1,42}, {2,42}, {3,42}, {4,42}};
_kernel(1) _at(1) void query(char op, unsigned k, unsigned &v,
                             char &hit, unsigned &hot) {
  if (op == GET_REQ) {
    hit = ncl::lookup(cache, k, v);
    return hit ? ncl::reflect() : sketch(k, hot);
  }
}
"#;

    // ---- batched execution (DESIGN.md §13) ------------------------------

    /// A mixed batch of hits, misses, and malformed packets: batched
    /// processing produces the same outputs, outcomes, counters, and
    /// register state as a scalar loop.
    #[test]
    fn process_batch_matches_scalar_loop() {
        let wires: Vec<Vec<u8>> =
            vec![wire(7, 0), wire(8, 5), vec![0x01], wire(7, 1), vec![], wire(3, 3)];

        let mut scalar = Switch::new(counting_program());
        scalar.set_timing(true);
        let mut pkt = scalar.new_packet();
        let mut out = Vec::new();
        let mut scalar_results = Vec::new();
        for w in &wires {
            let r = scalar.process_into(w, &mut pkt, &mut out);
            scalar_results.push((r, out.clone()));
        }

        let mut batched = Switch::new(counting_program());
        batched.set_timing(true);
        let mut batch = PacketBatch::new();
        for w in &wires {
            batch.push(w);
        }
        batched.process_batch(&mut batch);

        for (i, (r, o)) in scalar_results.iter().enumerate() {
            assert_eq!(batch.outcome(i), r, "outcome diverges at {i}");
            if r.is_ok() {
                assert_eq!(batch.output(i), o.as_slice(), "output diverges at {i}");
            }
        }
        assert_eq!(batched.counters(), scalar.counters(), "counters diverge");
        assert_eq!(batched.packets_processed, scalar.packets_processed);
        let br: Vec<_> = batched.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
        let sr: Vec<_> = scalar.registers().map(|(n, c)| (n.to_string(), c.to_vec())).collect();
        assert_eq!(br, sr, "register state diverges");
        // One timing sample per attempted packet, like the scalar path.
        assert_eq!(batched.timing().unwrap().count(), wires.len() as u64);
    }

    /// The interpreter oracle exposes the same batched entry point and
    /// agrees with the compiled engine batch-for-batch.
    #[test]
    fn process_batch_interpreter_oracle_agrees() {
        let wires = [wire(7, 0), vec![0xAB], wire(8, 1), wire(7, 2)];
        let mut fast = Switch::new(counting_program());
        let mut oracle = Switch::new(counting_program());
        oracle.set_interpreted(true);
        let (mut fb, mut ob) = (PacketBatch::new(), PacketBatch::new());
        for w in &wires {
            fb.push(w);
            ob.push(w);
        }
        fast.process_batch(&mut fb);
        oracle.process_batch(&mut ob);
        for i in 0..wires.len() {
            assert_eq!(fb.outcome(i), ob.outcome(i), "outcome diverges at {i}");
            assert_eq!(fb.output(i), ob.output(i), "output diverges at {i}");
        }
        assert_eq!(fast.counters(), oracle.counters(), "counters diverge");
    }

    /// `process_batch_from` halts at the first packet the predicate flags,
    /// leaves the rest untouched, and resumes exactly where it stopped.
    #[test]
    fn process_batch_from_stops_and_resumes() {
        let mut sw = Switch::new(counting_program());
        let mut batch = PacketBatch::new();
        for w in [wire(1, 0), wire(7, 0), wire(2, 0)] {
            batch.push(&w);
        }
        // Stop on the table hit (v rewritten to 99).
        let stopped = sw.process_batch_from(&mut batch, 0, |out| out == wire(7, 99));
        assert_eq!(stopped, Some(1));
        assert_eq!(sw.counters().packets, 2, "third packet untouched");
        assert_eq!(sw.register_read("R", 0), Some(2));
        let stopped = sw.process_batch_from(&mut batch, 2, |_| false);
        assert_eq!(stopped, None);
        assert_eq!(sw.counters().packets, 3);
        assert_eq!(batch.output(2), wire(2, 0));
    }

    /// Reusing one batch across calls keeps outputs and outcomes correct
    /// (buffer recycling must not leak stale bytes).
    #[test]
    fn batch_reuse_is_clean() {
        let mut sw = Switch::new(counting_program());
        let mut batch = PacketBatch::new();
        batch.push(&wire(7, 0));
        sw.process_batch(&mut batch);
        assert_eq!(batch.output(0), wire(7, 99));
        batch.clear();
        batch.push(&[0x01]);
        batch.push(&wire(8, 4));
        sw.process_batch(&mut batch);
        assert!(batch.outcome(0).is_err());
        assert_eq!(batch.output(1), wire(8, 4));
    }

    // ---- per-tenant accounting (DESIGN.md §17) --------------------------

    /// A hand-built merged two-tenant program. The header mimics the NCL
    /// shim: 8 bytes of preamble, then the comp byte at wire offset 8.
    /// Comp 1 is tenant 0's kernel (one reg action on `t0__A`); comp 2 is
    /// tenant 1's (two reg actions on `t1__B` plus a lookup MAT
    /// `lu_t1__kv`).
    fn tenant_program() -> P4Program {
        let comp_is = |v: u64| {
            Expr::Bin(
                P4BinOp::Eq,
                Box::new(Expr::field(&["hdr", "th", "comp"])),
                Box::new(Expr::val(v, 8)),
            )
        };
        let bump = |name: &str, register: &str| RegisterActionDef {
            name: name.into(),
            register: register.into(),
            op: AtomicOp { rmw: AtomicRmw::Add, cond: false, ret_new: true },
            cond: None,
            operands: vec![Expr::val(1, 32)],
        };
        let exec = |ra: &str| Stmt::ExecuteRegisterAction {
            dst: Some(Expr::field(&["meta", "cnt"])),
            ra: ra.into(),
            index: Expr::val(0, 32),
        };
        P4Program {
            name: "tenants".into(),
            target: Target::V1Model,
            headers: vec![HeaderDef {
                name: "th_t".into(),
                fields: vec![("pad".into(), 64), ("comp".into(), 8), ("k".into(), 8)],
                stack: 1,
            }],
            parser: Some(ParserDef {
                name: "P".into(),
                states: vec![ParserState {
                    name: "start".into(),
                    extracts: vec!["hdr.th".into()],
                    transition: Transition::Accept,
                }],
            }),
            controls: vec![ControlDef {
                name: "Ig".into(),
                locals: vec![("cnt".into(), 32)],
                registers: vec![
                    RegisterDef { name: "t0__A".into(), elem_bits: 32, size: 4 },
                    RegisterDef { name: "t1__B".into(), elem_bits: 32, size: 4 },
                ],
                register_actions: vec![bump("bump0", "t0__A"), bump("bump1", "t1__B")],
                hashes: vec![],
                actions: vec![ActionDef {
                    name: "setk".into(),
                    params: vec![("x".into(), 8)],
                    body: vec![Stmt::Assign(Expr::field(&["hdr", "th", "k"]), Expr::field(&["x"]))],
                }],
                tables: vec![TableDef {
                    name: "lu_t1__kv".into(),
                    keys: vec![(Expr::field(&["hdr", "th", "k"]), MatchKind::Exact)],
                    actions: vec!["setk".into()],
                    entries: vec![TableEntry {
                        keys: vec![EntryKey::Value(7)],
                        action: "setk".into(),
                        args: vec![42],
                    }],
                    default_action: "NoAction".into(),
                    size: 8,
                }],
                apply: vec![
                    Stmt::If { cond: comp_is(1), then: vec![exec("bump0")], els: vec![] },
                    Stmt::If {
                        cond: comp_is(2),
                        then: vec![
                            exec("bump1"),
                            exec("bump1"),
                            Stmt::ApplyTable("lu_t1__kv".into()),
                        ],
                        els: vec![],
                    },
                ],
            }],
        }
    }

    /// A 10-byte wire for [`tenant_program`]: 8 zero bytes, comp, k.
    fn twire(comp: u8, k: u8) -> Vec<u8> {
        let mut w = vec![0u8; 8];
        w.push(comp);
        w.push(k);
        w
    }

    /// All three engines attribute per-tenant packets, reg actions, and
    /// table stats identically; unmapped comps stay unattributed.
    #[test]
    fn tenant_counters_uniform_across_engines() {
        let run = |engine: Engine| {
            let mut sw = Switch::new(tenant_program());
            sw.set_engine(engine);
            sw.set_tenants(&[(1, 0), (2, 1)]);
            for w in [twire(1, 7), twire(2, 7), twire(2, 8), twire(3, 0)] {
                sw.process(&w).unwrap();
            }
            sw
        };
        let switches = [Engine::Interpreted, Engine::Compiled, Engine::Threaded].map(run);
        for sw in &switches {
            let e = sw.engine().name();
            assert_eq!(
                sw.tenant_counters(0),
                TenantCounters { packets: 1, reg_action_execs: 1 },
                "tenant 0 on {e}"
            );
            assert_eq!(
                sw.tenant_counters(1),
                TenantCounters { packets: 2, reg_action_execs: 4 },
                "tenant 1 on {e}"
            );
            assert_eq!(sw.tenant_counters(9), TenantCounters::default());
            // comp 3 is unmapped: counted globally, attributed to no one.
            assert_eq!(sw.counters().packets, 4);
            assert_eq!(
                sw.counters().tenants.values().map(|t| t.packets).sum::<u64>(),
                3,
                "one packet outside every tenant on {e}"
            );
            // Only comp-2 packets reach `lu_t1__kv`: k=7 hits, k=8 misses.
            assert_eq!(sw.tenant_table_stats(1), (1, 1), "tenant 1 tables on {e}");
            assert_eq!(sw.tenant_table_stats(0), (0, 0));
        }
        // Per-tenant maps are inside `SwitchCounters`' differential contract.
        assert_eq!(switches[0].counters(), switches[1].counters());
        assert_eq!(switches[1].counters(), switches[2].counters());
    }

    /// Both batch paths credit tenants exactly like the scalar loop, parse
    /// errors included, and `clear_tenants` stops attribution.
    #[test]
    fn tenant_counters_batch_matches_scalar() {
        // The 9-byte wire carries a readable comp byte but truncates the
        // header: its tenant is charged the packet and zero reg actions.
        let truncated = {
            let mut w = vec![0u8; 8];
            w.push(2);
            w
        };
        let wires = [twire(1, 7), twire(2, 7), truncated, twire(2, 8), twire(3, 1), vec![0x01]];

        let mut scalar = Switch::new(tenant_program());
        scalar.set_tenants(&[(1, 0), (2, 1)]);
        let mut pkt = scalar.new_packet();
        let mut out = Vec::new();
        for w in &wires {
            let _ = scalar.process_into(w, &mut pkt, &mut out);
        }

        let mut batched = Switch::new(tenant_program());
        batched.set_tenants(&[(1, 0), (2, 1)]);
        let mut batch = PacketBatch::new();
        for w in &wires {
            batch.push(w);
        }
        batched.process_batch(&mut batch);
        assert_eq!(batched.counters(), scalar.counters(), "phase-split batch diverges");

        let mut resumable = Switch::new(tenant_program());
        resumable.set_tenants(&[(1, 0), (2, 1)]);
        let mut batch2 = PacketBatch::new();
        for w in &wires {
            batch2.push(w);
        }
        assert_eq!(resumable.process_batch_from(&mut batch2, 0, |_| false), None);
        assert_eq!(resumable.counters(), scalar.counters(), "resumable batch diverges");

        assert_eq!(
            scalar.tenant_counters(1),
            TenantCounters { packets: 3, reg_action_execs: 4 },
            "truncated comp-2 packet charged, zero reg actions"
        );

        // Dropping tenancy stops attribution but not global counting.
        let before = scalar.tenant_counters(0);
        scalar.clear_tenants();
        scalar.process(&twire(1, 7)).unwrap();
        assert_eq!(scalar.tenant_counters(0), before);
        assert_eq!(scalar.counters().packets, wires.len() as u64 + 1);
    }
}
