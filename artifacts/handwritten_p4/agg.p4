// agg_handwritten — generated for Intel Tofino (TNA)
#include <core.p4>
#include <tna.p4>

header ncl_t {
    bit<16> src;
    bit<16> dst;
    bit<16> from;
    bit<16> to;
    bit<8> comp;
    bit<8> action;
    bit<16> target;
}

header args_c1_t {
    bit<8> a0_ver;
    bit<16> a1_bmp_idx;
    bit<16> a2_agg_idx;
    bit<16> a3_mask;
    bit<8> a4_exp;
}

header arr_c1_a5_t {
    bit<32> value;
}

parser IgParser(packet_in pkt, out headers_t hdr) {
    state start {
        pkt.extract(hdr.ncl);
        transition select(hdr.ncl.comp) {
            1: parse_agg;
            default: accept;
        }
    }
    state parse_agg {
        pkt.extract(hdr.args_c1);
        pkt.extract(hdr.arr_c1_a5);
        transition accept;
    }
}

control Ig(inout headers_t hdr, inout metadata_t meta) {
    bit<16> bitmap;
    bit<16> seen;
    bit<8> cnt;
    bit<8> decision;
    Register<bit<16>, bit<32>>(16) Bitmap0;
    Register<bit<16>, bit<32>>(16) Bitmap1;
    Register<bit<32>, bit<32>>(32) Agg0;
    Register<bit<32>, bit<32>>(32) Agg1;
    Register<bit<32>, bit<32>>(32) Agg2;
    Register<bit<32>, bit<32>>(32) Agg3;
    Register<bit<32>, bit<32>>(32) Agg4;
    Register<bit<32>, bit<32>>(32) Agg5;
    Register<bit<32>, bit<32>>(32) Agg6;
    Register<bit<32>, bit<32>>(32) Agg7;
    Register<bit<32>, bit<32>>(32) Agg8;
    Register<bit<32>, bit<32>>(32) Agg9;
    Register<bit<32>, bit<32>>(32) Agg10;
    Register<bit<32>, bit<32>>(32) Agg11;
    Register<bit<32>, bit<32>>(32) Agg12;
    Register<bit<32>, bit<32>>(32) Agg13;
    Register<bit<32>, bit<32>>(32) Agg14;
    Register<bit<32>, bit<32>>(32) Agg15;
    Register<bit<32>, bit<32>>(32) Agg16;
    Register<bit<32>, bit<32>>(32) Agg17;
    Register<bit<32>, bit<32>>(32) Agg18;
    Register<bit<32>, bit<32>>(32) Agg19;
    Register<bit<32>, bit<32>>(32) Agg20;
    Register<bit<32>, bit<32>>(32) Agg21;
    Register<bit<32>, bit<32>>(32) Agg22;
    Register<bit<32>, bit<32>>(32) Agg23;
    Register<bit<32>, bit<32>>(32) Agg24;
    Register<bit<32>, bit<32>>(32) Agg25;
    Register<bit<32>, bit<32>>(32) Agg26;
    Register<bit<32>, bit<32>>(32) Agg27;
    Register<bit<32>, bit<32>>(32) Agg28;
    Register<bit<32>, bit<32>>(32) Agg29;
    Register<bit<32>, bit<32>>(32) Agg30;
    Register<bit<32>, bit<32>>(32) Agg31;
    Register<bit<8>, bit<32>>(32) Count;
    Register<bit<8>, bit<32>>(32) ExpR;
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap0) bmp_set0 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m | hdr.args_c1.a3_mask;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap0) bmp_clr0 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m & ~(hdr.args_c1.a3_mask);
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap1) bmp_set1 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m | hdr.args_c1.a3_mask;
        }
    };
    RegisterAction<bit<16>, bit<32>, bit<16>>(Bitmap1) bmp_clr1 = {
        void apply(inout bit<16> m, out bit<16> o) {
            o = m;
            m = m & ~(hdr.args_c1.a3_mask);
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg0) agg_write0 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[0].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg0) agg_add0 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[0].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg1) agg_write1 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[1].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg1) agg_add1 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[1].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg2) agg_write2 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[2].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg2) agg_add2 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[2].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg3) agg_write3 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[3].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg3) agg_add3 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[3].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg4) agg_write4 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[4].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg4) agg_add4 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[4].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg5) agg_write5 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[5].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg5) agg_add5 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[5].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg6) agg_write6 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[6].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg6) agg_add6 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[6].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg7) agg_write7 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[7].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg7) agg_add7 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[7].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg8) agg_write8 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[8].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg8) agg_add8 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[8].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg9) agg_write9 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[9].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg9) agg_add9 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[9].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg10) agg_write10 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[10].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg10) agg_add10 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[10].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg11) agg_write11 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[11].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg11) agg_add11 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[11].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg12) agg_write12 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[12].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg12) agg_add12 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[12].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg13) agg_write13 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[13].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg13) agg_add13 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[13].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg14) agg_write14 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[14].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg14) agg_add14 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[14].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg15) agg_write15 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[15].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg15) agg_add15 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[15].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg16) agg_write16 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[16].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg16) agg_add16 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[16].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg17) agg_write17 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[17].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg17) agg_add17 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[17].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg18) agg_write18 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[18].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg18) agg_add18 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[18].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg19) agg_write19 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[19].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg19) agg_add19 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[19].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg20) agg_write20 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[20].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg20) agg_add20 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[20].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg21) agg_write21 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[21].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg21) agg_add21 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[21].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg22) agg_write22 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[22].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg22) agg_add22 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[22].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg23) agg_write23 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[23].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg23) agg_add23 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[23].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg24) agg_write24 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[24].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg24) agg_add24 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[24].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg25) agg_write25 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[25].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg25) agg_add25 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[25].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg26) agg_write26 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[26].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg26) agg_add26 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[26].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg27) agg_write27 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[27].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg27) agg_add27 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[27].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg28) agg_write28 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[28].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg28) agg_add28 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[28].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg29) agg_write29 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[29].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg29) agg_add29 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[29].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg30) agg_write30 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[30].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg30) agg_add30 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[30].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg31) agg_write31 = {
        void apply(inout bit<32> m, out bit<32> o) {
            o = m;
            m = hdr.arr_c1_a5[31].value;
        }
    };
    RegisterAction<bit<32>, bit<32>, bit<32>>(Agg31) agg_add31 = {
        void apply(inout bit<32> m, out bit<32> o) {
            if ((meta.seen == 16w0)) {
                m = m + hdr.arr_c1_a5[31].value;
            }
            o = m;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Count) count_reset = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = 8w5;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(Count) count_dec = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            if ((meta.seen == 16w0)) {
                m = m |-| 1;
            }
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(ExpR) exp_write = {
        void apply(inout bit<8> m, out bit<8> o) {
            o = m;
            m = hdr.args_c1.a4_exp;
        }
    };
    RegisterAction<bit<8>, bit<32>, bit<8>>(ExpR) exp_max = {
        void apply(inout bit<8> m, out bit<8> o) {
            if ((meta.seen == 16w0)) {
                m = max(m, hdr.args_c1.a4_exp);
            }
            o = m;
        }
    };
    action act_reflect() {
        hdr.ncl.action = 8w5;
    }
    action act_mcast() {
        hdr.ncl.action = 8w4;
    }
    action act_drop() {
        hdr.ncl.action = 8w1;
    }
    action set_mcast_target() {
        hdr.ncl.target = 16w42;
    }
    table slot_decision {
        key = { meta.seen : ternary; meta.cnt : ternary }
        actions = { act_reflect; act_mcast; act_drop; NoAction; }
        default_action = act_drop();
        const entries = {
            (1 .. 65535, 0) : act_reflect();
            (0, 1) : act_mcast();
        }
        size = 4;
    }
    table l2_fwd {
        key = { hdr.ncl.dst : exact }
        actions = { NoAction; }
        default_action = NoAction();
        size = 64;
    }
    apply {
        if ((hdr.ncl.isValid() && (hdr.ncl.to == 16w1))) {
            if ((hdr.args_c1.a0_ver == 8w0)) {
                meta.bitmap = bmp_set0.execute(hdr.args_c1.a1_bmp_idx);
                bmp_clr1.execute(hdr.args_c1.a1_bmp_idx);
            } else {
                bmp_clr0.execute(hdr.args_c1.a1_bmp_idx);
                meta.bitmap = bmp_set1.execute(hdr.args_c1.a1_bmp_idx);
            }
            meta.seen = (meta.bitmap & hdr.args_c1.a3_mask);
            if ((meta.bitmap == 16w0)) {
                exp_write.execute(hdr.args_c1.a2_agg_idx);
                count_reset.execute(hdr.args_c1.a2_agg_idx);
                hdr.ncl.action = 8w1;
                agg_write0.execute(hdr.args_c1.a2_agg_idx);
                agg_write1.execute(hdr.args_c1.a2_agg_idx);
                agg_write2.execute(hdr.args_c1.a2_agg_idx);
                agg_write3.execute(hdr.args_c1.a2_agg_idx);
                agg_write4.execute(hdr.args_c1.a2_agg_idx);
                agg_write5.execute(hdr.args_c1.a2_agg_idx);
                agg_write6.execute(hdr.args_c1.a2_agg_idx);
                agg_write7.execute(hdr.args_c1.a2_agg_idx);
                agg_write8.execute(hdr.args_c1.a2_agg_idx);
                agg_write9.execute(hdr.args_c1.a2_agg_idx);
                agg_write10.execute(hdr.args_c1.a2_agg_idx);
                agg_write11.execute(hdr.args_c1.a2_agg_idx);
                agg_write12.execute(hdr.args_c1.a2_agg_idx);
                agg_write13.execute(hdr.args_c1.a2_agg_idx);
                agg_write14.execute(hdr.args_c1.a2_agg_idx);
                agg_write15.execute(hdr.args_c1.a2_agg_idx);
                agg_write16.execute(hdr.args_c1.a2_agg_idx);
                agg_write17.execute(hdr.args_c1.a2_agg_idx);
                agg_write18.execute(hdr.args_c1.a2_agg_idx);
                agg_write19.execute(hdr.args_c1.a2_agg_idx);
                agg_write20.execute(hdr.args_c1.a2_agg_idx);
                agg_write21.execute(hdr.args_c1.a2_agg_idx);
                agg_write22.execute(hdr.args_c1.a2_agg_idx);
                agg_write23.execute(hdr.args_c1.a2_agg_idx);
                agg_write24.execute(hdr.args_c1.a2_agg_idx);
                agg_write25.execute(hdr.args_c1.a2_agg_idx);
                agg_write26.execute(hdr.args_c1.a2_agg_idx);
                agg_write27.execute(hdr.args_c1.a2_agg_idx);
                agg_write28.execute(hdr.args_c1.a2_agg_idx);
                agg_write29.execute(hdr.args_c1.a2_agg_idx);
                agg_write30.execute(hdr.args_c1.a2_agg_idx);
                agg_write31.execute(hdr.args_c1.a2_agg_idx);
            } else {
                hdr.args_c1.a4_exp = exp_max.execute(hdr.args_c1.a2_agg_idx);
                meta.cnt = count_dec.execute(hdr.args_c1.a2_agg_idx);
                slot_decision.apply();
                if ((hdr.ncl.action == 8w4)) {
                    set_mcast_target();
                }
                hdr.arr_c1_a5[0].value = agg_add0.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[1].value = agg_add1.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[2].value = agg_add2.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[3].value = agg_add3.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[4].value = agg_add4.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[5].value = agg_add5.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[6].value = agg_add6.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[7].value = agg_add7.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[8].value = agg_add8.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[9].value = agg_add9.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[10].value = agg_add10.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[11].value = agg_add11.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[12].value = agg_add12.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[13].value = agg_add13.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[14].value = agg_add14.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[15].value = agg_add15.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[16].value = agg_add16.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[17].value = agg_add17.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[18].value = agg_add18.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[19].value = agg_add19.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[20].value = agg_add20.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[21].value = agg_add21.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[22].value = agg_add22.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[23].value = agg_add23.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[24].value = agg_add24.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[25].value = agg_add25.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[26].value = agg_add26.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[27].value = agg_add27.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[28].value = agg_add28.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[29].value = agg_add29.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[30].value = agg_add30.execute(hdr.args_c1.a2_agg_idx);
                hdr.arr_c1_a5[31].value = agg_add31.execute(hdr.args_c1.a2_agg_idx);
            }
        }
        l2_fwd.apply();
    }
}

